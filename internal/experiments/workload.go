// Package experiments regenerates every table and figure of the
// paper's evaluation (§VI): Fig. 8 + Table III (comparison with Basic),
// Fig. 9 (tree schedulers), Fig. 10 (entities per machine), and
// Fig. 11 (recall speedup). Each experiment returns plot-ready series
// (recall vs simulated cost) and renders the same rows the paper
// reports. Scale is configurable; the defaults are sized for laptop
// runs and the shapes — who wins, by what factor, where the crossovers
// fall — are what reproduce the paper, not absolute values (the
// substrate is a simulator; see DESIGN.md).
package experiments

import (
	"proger/internal/blocking"
	"proger/internal/core"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/entity"
	"proger/internal/estimate"
	"proger/internal/match"
	"proger/internal/mechanism"
	"proger/internal/obs/quality"
	"proger/internal/progress"
	"proger/internal/sched"
)

// Workload bundles a dataset with everything needed to resolve it.
type Workload struct {
	Name    string
	DS      *entity.Dataset
	GT      *datagen.GroundTruth
	Fams    blocking.Families
	Matcher *match.Matcher
	Mech    mechanism.Mechanism
	Policy  estimate.Policy
	Model   estimate.DupModel
}

// PublicationsWorkload builds the CiteSeerX-like workload: SN mechanism
// with the Whang et al. hint, CiteSeerX blocking functions and policy,
// and a duplicate model trained on a disjoint training sample
// (§VI-A2..A5).
func PublicationsWorkload(n int, seed int64) *Workload {
	ds, gt := datagen.Publications(datagen.DefaultPublications(n, seed))
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	trainN := n / 4
	if trainN < 500 {
		trainN = 500
	}
	trainDS, trainGT := datagen.Publications(datagen.DefaultPublications(trainN, seed+100000))
	model := estimate.Train(trainDS, trainGT, blocking.CiteSeerXFamilies(trainDS.Schema))
	return &Workload{
		Name: "publications",
		DS:   ds,
		GT:   gt,
		Fams: fams,
		Matcher: match.MustNew(0.75,
			match.Rule{Attr: ds.Schema.Index("title"), Weight: 0.5, Kind: match.EditDistance},
			match.Rule{Attr: ds.Schema.Index("abstract"), Weight: 0.3, Kind: match.EditDistance, MaxChars: 350},
			match.Rule{Attr: ds.Schema.Index("venue"), Weight: 0.2, Kind: match.EditDistance},
		),
		Mech:   mechanism.SN{},
		Policy: estimate.CiteSeerXPolicy(),
		Model:  model,
	}
}

// BooksWorkload builds the OL-Books-like workload: PSNM mechanism,
// OL-Books blocking functions and policy, eight compared attributes
// (edit distance or exact matching, §VI-A2).
func BooksWorkload(n int, seed int64) *Workload {
	ds, gt := datagen.Books(datagen.DefaultBooks(n, seed))
	fams := blocking.OLBooksFamilies(ds.Schema)
	trainN := n / 4
	if trainN < 500 {
		trainN = 500
	}
	trainDS, trainGT := datagen.Books(datagen.DefaultBooks(trainN, seed+100000))
	model := estimate.Train(trainDS, trainGT, blocking.OLBooksFamilies(trainDS.Schema))
	idx := ds.Schema.Index
	return &Workload{
		Name: "books",
		DS:   ds,
		GT:   gt,
		Fams: fams,
		Matcher: match.MustNew(0.62,
			match.Rule{Attr: idx("title"), Weight: 0.35, Kind: match.EditDistance},
			match.Rule{Attr: idx("authors"), Weight: 0.25, Kind: match.EditDistance},
			match.Rule{Attr: idx("publisher"), Weight: 0.10, Kind: match.EditDistance},
			match.Rule{Attr: idx("year"), Weight: 0.08, Kind: match.ExactMatch},
			match.Rule{Attr: idx("language"), Weight: 0.06, Kind: match.ExactMatch},
			match.Rule{Attr: idx("format"), Weight: 0.05, Kind: match.ExactMatch},
			match.Rule{Attr: idx("pages"), Weight: 0.05, Kind: match.ExactMatch},
			match.Rule{Attr: idx("edition"), Weight: 0.06, Kind: match.ExactMatch},
		),
		Mech:   mechanism.PSNM{},
		Policy: estimate.OLBooksPolicy(),
		Model:  model,
	}
}

// Run is one resolved configuration: its recall curve (against ground
// truth), its self-relative quality curve, and identifiers.
type Run struct {
	Label string
	Curve *progress.Curve
	Total costmodel.Units
	// Quality is the telemetry-derived progressive curve (recall proxy
	// against the run's own final duplicates) with its normalized AUC —
	// the progressiveness number reported alongside Figs. 8 and 9.
	Quality *quality.Curve
}

// RunOurs executes the paper's approach on μ machines with the given
// tree scheduler.
func (w *Workload) RunOurs(machines int, kind sched.Kind, label string) (*Run, error) {
	qrec := quality.NewRecorder()
	res, err := core.Resolve(w.DS, core.Options{
		Families:        w.Fams,
		Matcher:         w.Matcher,
		Mechanism:       w.Mech,
		Policy:          w.Policy,
		DupModel:        w.Model,
		Machines:        machines,
		SlotsPerMachine: 2,
		Scheduler:       kind,
		Quality:         qrec,
	})
	if err != nil {
		return nil, err
	}
	curve := progress.BuildCurve(res.EventsAgainst(w.GT.IsDup), w.GT.NumDupPairs(), res.TotalTime)
	return &Run{Label: label, Curve: curve, Total: res.TotalTime, Quality: qrec.BuildCurve(0)}, nil
}

// RunBasic executes the Basic baseline with window w and popcorn
// threshold (negative = Basic F).
func (w *Workload) RunBasic(machines, window int, threshold float64, label string) (*Run, error) {
	qrec := quality.NewRecorder()
	res, err := core.ResolveBasic(w.DS, core.BasicOptions{
		Families:         w.Fams,
		Matcher:          w.Matcher,
		Mechanism:        w.Mech,
		Window:           window,
		PopcornThreshold: threshold,
		Machines:         machines,
		SlotsPerMachine:  2,
		Quality:          qrec,
	})
	if err != nil {
		return nil, err
	}
	curve := progress.BuildCurve(res.EventsAgainst(w.GT.IsDup), w.GT.NumDupPairs(), res.TotalTime)
	return &Run{Label: label, Curve: curve, Total: res.TotalTime, Quality: qrec.BuildCurve(0)}, nil
}
