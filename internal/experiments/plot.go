package experiments

import (
	"fmt"
	"strings"
)

// plotGlyphs mark the series in a text plot, in series order.
var plotGlyphs = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Plot renders the figure as an ASCII chart (recall on the y axis, cost
// on the x axis), the closest a terminal gets to the paper's figures.
// Later series overdraw earlier ones at shared cells, so the paper's
// approach (conventionally the last series) stays visible.
func (f *Figure) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	if len(f.Times) > 0 {
		for s, series := range f.Series {
			glyph := plotGlyphs[s%len(plotGlyphs)]
			for i, recall := range series.Recalls {
				col := i * (width - 1) / max(len(f.Times)-1, 1)
				row := height - 1 - int(recall*float64(height-1)+0.5)
				if row < 0 {
					row = 0
				}
				if row >= height {
					row = height - 1
				}
				grid[row][col] = glyph
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for r, line := range grid {
		yVal := float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "      +%s+\n", strings.Repeat("-", width))
	if len(f.Times) > 0 {
		fmt.Fprintf(&b, "      0%*s\n", width, fmt.Sprintf("%.0f %s", f.Times[len(f.Times)-1], f.XLabel))
	}
	for s, series := range f.Series {
		fmt.Fprintf(&b, "      %c = %s\n", plotGlyphs[s%len(plotGlyphs)], series.Label)
	}
	return b.String()
}
