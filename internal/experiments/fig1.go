package experiments

import (
	"proger/internal/progress"
	"proger/internal/sched"
)

// Fig1Config scales the conceptual Fig. 1 demonstration: the quality of
// the cleaned data as a function of resolution cost for three approach
// types — traditional ER (results only at the very end), an
// incremental configuration (results stream out, but in an order blind
// to duplicates: the Basic F baseline), and progressive ER (this
// paper's approach).
type Fig1Config struct {
	Entities   int
	Seed       int64
	Machines   int
	GridPoints int
}

func (c *Fig1Config) defaults() {
	if c.Entities <= 0 {
		c.Entities = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Machines <= 0 {
		c.Machines = 10
	}
	if c.GridPoints <= 0 {
		c.GridPoints = 16
	}
}

// Fig1 reproduces the concept figure with real runs.
func Fig1(cfg Fig1Config) (*Figure, error) {
	cfg.defaults()
	w := PublicationsWorkload(cfg.Entities, cfg.Seed)

	// Incremental: Basic F — every block resolved fully, results
	// written as they are found, but block order is oblivious to where
	// the duplicates are.
	incremental, err := w.RunBasic(cfg.Machines, 15, -1, "Incremental")
	if err != nil {
		return nil, err
	}

	// Traditional: the same computation, but results become visible
	// only when the whole job finishes — the curve is a single step to
	// the incremental run's final recall, at its completion time.
	totalDups := w.GT.NumDupPairs()
	burst := int64(incremental.Curve.FinalRecall() * float64(totalDups))
	events := make([]progress.Event, 0, burst)
	for _, pr := range w.GT.DupPairs() {
		if int64(len(events)) >= burst {
			break
		}
		events = append(events, progress.Event{Time: incremental.Total, Pair: pr, TrueDup: true})
	}
	traditional := &Run{
		Label: "Traditional",
		Curve: progress.BuildCurve(events, totalDups, incremental.Total),
		Total: incremental.Total,
	}

	ours, err := w.RunOurs(cfg.Machines, sched.Ours, "Progressive (ours)")
	if err != nil {
		return nil, err
	}

	return NewFigure("Fig1", "Progressive vs incremental vs traditional ER", cfg.GridPoints,
		traditional, incremental, ours), nil
}
