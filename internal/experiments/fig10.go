package experiments

import (
	"fmt"

	"proger/internal/sched"
)

// Fig10Config scales the entities-per-machine experiment (§VI-B3): the
// books workload with PSNM, fixed dataset size, machine counts
// {20, 10, 5} — so θ = |D|/μ grows left to right, as in the paper
// (30M/20, 30M/10, 30M/5).
type Fig10Config struct {
	Entities   int
	Seed       int64
	Machines   []int
	Thresholds []float64
	GridPoints int
}

func (c *Fig10Config) defaults() {
	if c.Entities <= 0 {
		c.Entities = 6000
	}
	if c.Seed == 0 {
		c.Seed = 10
	}
	if len(c.Machines) == 0 {
		c.Machines = []int{20, 10, 5}
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{0.0005, 0.005, 0.05}
	}
	if c.GridPoints <= 0 {
		c.GridPoints = 16
	}
}

// Fig10Result holds one sub-figure per θ value.
type Fig10Result struct {
	SubFigures []*Figure
}

// Fig10 runs our approach vs Basic (three popcorn thresholds) on the
// books workload at each machine count.
func Fig10(cfg Fig10Config) (*Fig10Result, error) {
	cfg.defaults()
	w := BooksWorkload(cfg.Entities, cfg.Seed)
	res := &Fig10Result{}
	for _, mu := range cfg.Machines {
		runs := []*Run{}
		ours, err := w.RunOurs(mu, sched.Ours, "Our Approach")
		if err != nil {
			return nil, err
		}
		runs = append(runs, ours)
		for _, th := range cfg.Thresholds {
			r, err := w.RunBasic(mu, 15, th, thresholdLabel(th))
			if err != nil {
				return nil, err
			}
			runs = append(runs, r)
		}
		theta := cfg.Entities / mu
		fig := NewFigure(
			fmt.Sprintf("Fig10-theta%d", theta),
			fmt.Sprintf("θ = %d entities / %d machines = %d", cfg.Entities, mu, theta),
			cfg.GridPoints, runs...)
		res.SubFigures = append(res.SubFigures, fig)
	}
	return res, nil
}
