package experiments

import (
	"fmt"
)

// Fig8Config scales the Fig. 8 / Table III experiment: comparison of
// our approach with the Basic baseline on the publications workload
// with μ = 10 machines (§VI-B1).
type Fig8Config struct {
	// Entities is the dataset size (the paper uses CiteSeerX's 1.5 M;
	// defaults to 4000 for laptop-scale runs).
	Entities int
	Seed     int64
	Machines int
	// GridPoints is the number of samples per curve.
	GridPoints int
}

func (c *Fig8Config) defaults() {
	if c.Entities <= 0 {
		c.Entities = 4000
	}
	if c.Seed == 0 {
		c.Seed = 8
	}
	if c.Machines <= 0 {
		c.Machines = 10
	}
	if c.GridPoints <= 0 {
		c.GridPoints = 16
	}
}

// Fig8Result carries the three sub-figures of Fig. 8 and Table III.
type Fig8Result struct {
	// Left: w=15 with optimistic popcorn thresholds; Mid: w=15 with
	// conservative thresholds; Right: w=5 with the best four thresholds.
	Left, Mid, Right *Figure
	TableIII         *Table
}

// popcorn threshold sets, exactly as in Fig. 8.
var (
	fig8LeftThresholds  = []float64{-1, 0.1, 0.07, 0.04, 0.01}
	fig8MidThresholds   = []float64{-1, 0.007, 0.004, 0.001, 0.00001}
	fig8RightThresholds = []float64{-1, 0.07, 0.01, 0.007}
	table3Thresholds    = []float64{0.1, 0.07, 0.04, 0.01, 0.007, 0.004, 0.001, 0.00001, -1}
)

func thresholdLabel(th float64) string {
	if th < 0 {
		return "Basic F"
	}
	return fmt.Sprintf("Basic %g", th)
}

// Fig8 runs the comparison-with-Basic experiment and regenerates the
// three sub-figures of Fig. 8 plus Table III.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	cfg.defaults()
	w := PublicationsWorkload(cfg.Entities, cfg.Seed)

	ours, err := w.RunOurs(cfg.Machines, 0, "Our Approach")
	if err != nil {
		return nil, err
	}

	// All Basic runs, keyed by (window, threshold); Table III needs the
	// full cross product, the sub-figures need subsets.
	type key struct {
		window int
		th     float64
	}
	runs := map[key]*Run{}
	runBasic := func(window int, th float64) (*Run, error) {
		k := key{window, th}
		if r, ok := runs[k]; ok {
			return r, nil
		}
		r, err := w.RunBasic(cfg.Machines, window, th, thresholdLabel(th))
		if err != nil {
			return nil, err
		}
		runs[k] = r
		return r, nil
	}

	collect := func(window int, ths []float64) ([]*Run, error) {
		out := make([]*Run, 0, len(ths)+1)
		for _, th := range ths {
			r, err := runBasic(window, th)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		out = append(out, ours)
		return out, nil
	}

	left, err := collect(15, fig8LeftThresholds)
	if err != nil {
		return nil, err
	}
	mid, err := collect(15, fig8MidThresholds)
	if err != nil {
		return nil, err
	}
	right, err := collect(5, fig8RightThresholds)
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{
		Left:  NewFigure("Fig8-left", "Ours vs Basic, w=15, optimistic thresholds", cfg.GridPoints, left...),
		Mid:   NewFigure("Fig8-mid", "Ours vs Basic, w=15, conservative thresholds", cfg.GridPoints, mid...),
		Right: NewFigure("Fig8-right", "Ours vs Basic, w=5", cfg.GridPoints, right...),
	}

	// Table III: final recall and total execution time per threshold,
	// for w=5 and w=15, plus our approach's summary row.
	table := &Table{
		ID:     "TableIII",
		Title:  "Final recall and total execution time for Basic",
		Header: []string{"Thresh.", "Recall w=5", "Recall w=15", "Time w=5", "Time w=15"},
	}
	for _, th := range table3Thresholds {
		r5, err := runBasic(5, th)
		if err != nil {
			return nil, err
		}
		r15, err := runBasic(15, th)
		if err != nil {
			return nil, err
		}
		name := "F"
		if th >= 0 {
			name = fmt.Sprintf("%g", th)
		}
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%.2f", r5.Curve.FinalRecall()),
			fmt.Sprintf("%.2f", r15.Curve.FinalRecall()),
			fmt.Sprintf("%.0f", r5.Total),
			fmt.Sprintf("%.0f", r15.Total),
		})
	}
	table.Rows = append(table.Rows, []string{
		"Ours",
		fmt.Sprintf("%.2f", ours.Curve.FinalRecall()),
		fmt.Sprintf("%.2f", ours.Curve.FinalRecall()),
		fmt.Sprintf("%.0f", ours.Total),
		fmt.Sprintf("%.0f", ours.Total),
	})
	res.TableIII = table
	return res, nil
}
