package extsort

// This file implements the stable k-way merge shared by the external
// sorter's spill path and the MapReduce engine's in-memory shuffle: a
// tournament (loser) tree over pre-sorted sources. Compared with
// container/heap it avoids interface boxing and does exactly one
// leaf-to-root pass of ⌈log₂ k⌉ comparisons per record.
//
// Stability: ties on the comparison function are broken by source
// index, so giving the merger its sources in priority order (map-task
// order in the engine, spill order in the sorter) reproduces the order
// a stable sort of the concatenation would produce.

// Merger merges k pre-sorted sources into one sorted stream. Each
// source is a pull function returning its next record and whether one
// was available; cmp is a three-way comparison (< 0, 0, > 0). Records
// that compare equal surface in source order.
type Merger[T any] struct {
	cmp   func(a, b T) int
	pull  []func() (T, bool)
	heads []T
	done  []bool
	// tree[1..k-1] holds the loser of each internal match; tree[0] the
	// overall winner. Leaf s sits conceptually at node k+s.
	tree []int
	k    int
}

// NewMerger builds a merger over pulls; it immediately pulls one record
// from every source. A nil or empty pulls list yields an empty merge.
func NewMerger[T any](pulls []func() (T, bool), cmp func(a, b T) int) *Merger[T] {
	k := len(pulls)
	m := &Merger[T]{
		cmp:   cmp,
		pull:  pulls,
		heads: make([]T, k),
		done:  make([]bool, k),
		tree:  make([]int, k),
		k:     k,
	}
	for s := 0; s < k; s++ {
		v, ok := pulls[s]()
		m.heads[s] = v
		m.done[s] = !ok
	}
	if k > 0 {
		m.build()
	}
	return m
}

// beats reports whether source a's head wins (sorts before) source b's.
// An exhausted source loses to everything; equal heads go to the lower
// source index (stability).
func (m *Merger[T]) beats(a, b int) bool {
	if m.done[a] || m.done[b] {
		return !m.done[a]
	}
	if c := m.cmp(m.heads[a], m.heads[b]); c != 0 {
		return c < 0
	}
	return a < b
}

// build plays the full tournament, filling tree with losers and tree[0]
// with the winner.
func (m *Merger[T]) build() {
	// winners[n] is the winner of the subtree rooted at internal node n;
	// computed bottom-up so each node stores its match's loser.
	winners := make([]int, 2*m.k)
	for s := 0; s < m.k; s++ {
		winners[m.k+s] = s
	}
	for n := m.k - 1; n >= 1; n-- {
		a, b := winners[2*n], winners[2*n+1]
		if m.beats(a, b) {
			winners[n], m.tree[n] = a, b
		} else {
			winners[n], m.tree[n] = b, a
		}
	}
	m.tree[0] = winners[1]
}

// Next returns the smallest remaining record, pulling its source's
// replacement and replaying that leaf's matches up the tree.
func (m *Merger[T]) Next() (T, bool) {
	var zero T
	if m.k == 0 {
		return zero, false
	}
	s := m.tree[0]
	if m.done[s] {
		return zero, false
	}
	out := m.heads[s]
	v, ok := m.pull[s]()
	m.heads[s] = v
	m.done[s] = !ok
	// Replay from leaf k+s to the root: the new head competes against
	// each stored loser; the loser of every match stays at the node.
	winner := s
	for n := (m.k + s) / 2; n >= 1; n /= 2 {
		if m.beats(m.tree[n], winner) {
			winner, m.tree[n] = m.tree[n], winner
		}
	}
	m.tree[0] = winner
	return out, true
}
