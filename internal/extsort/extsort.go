// Package extsort implements a stable external merge sort for
// key-value records: records accumulate in memory up to a budget, are
// spilled as sorted runs to temporary files, and are merged with a
// k-way heap on iteration. The MapReduce engine uses it for the
// reduce-side shuffle when a task's input exceeds its memory budget,
// mirroring Hadoop's spill-and-merge shuffle.
//
// Stability matters: the engine requires that records with equal keys
// surface in insertion order (map-task order), so every record carries
// a sequence number that breaks key ties during the merge.
//
// Run files are compressed and CRC-framed (see compress.go); the
// record codec is exported as RunWriter/RunReader for callers that
// manage their own runs.
package extsort

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Record is one key-value pair.
type Record struct {
	Key   string
	Value []byte
}

// Sorter accumulates records and sorts them, spilling runs into a
// unique temporary directory under parent when more than memLimit
// records are buffered. A memLimit ≤ 0 never spills. Close removes the
// temporary directory; concurrent Sorters never share spill paths.
type Sorter struct {
	parent   string
	dir      string // lazily created per-Sorter temp dir
	memLimit int

	buf    []seqRecord
	seq    uint64
	runs   []string
	sorted bool

	// createRun is a test seam for injecting write failures; nil means
	// "create a fresh file in the per-Sorter temp dir".
	createRun func() (io.WriteCloser, string, error)
}

type seqRecord struct {
	Record
	seq uint64
}

// NewSorter creates a sorter spilling into a fresh private directory
// under parent (the system temp dir when parent is empty), created on
// first spill.
func NewSorter(parent string, memLimit int) *Sorter {
	return &Sorter{parent: parent, memLimit: memLimit}
}

// newRunFile opens a fresh run file, creating the per-Sorter temp dir
// on first use.
func (s *Sorter) newRunFile() (io.WriteCloser, string, error) {
	if s.createRun != nil {
		return s.createRun()
	}
	if s.dir == "" {
		dir, err := os.MkdirTemp(s.parent, "proger-extsort-*")
		if err != nil {
			return nil, "", fmt.Errorf("extsort: %w", err)
		}
		s.dir = dir
	}
	f, err := os.CreateTemp(s.dir, "run-*.spill")
	if err != nil {
		return nil, "", fmt.Errorf("extsort: %w", err)
	}
	return f, f.Name(), nil
}

// Add buffers one record, spilling a sorted run if the budget is full.
func (s *Sorter) Add(key string, value []byte) error {
	if s.sorted {
		return fmt.Errorf("extsort: Add after Sort")
	}
	s.buf = append(s.buf, seqRecord{Record: Record{Key: key, Value: value}, seq: s.seq})
	s.seq++
	if s.memLimit > 0 && len(s.buf) >= s.memLimit {
		return s.spill()
	}
	return nil
}

// AddSortedRun ingests a whole pre-sorted run at once: recs must
// already be in (key, insertion) order — e.g. a map task's partition
// output, sorted stably by key. The run is never re-sorted: with a
// spill budget it goes straight to disk as one run; without one it is
// buffered (and merged with everything else on Sort). Relative order
// against records from other Add/AddSortedRun calls follows call
// order, exactly as if each record had been Added individually.
func (s *Sorter) AddSortedRun(recs []Record) error {
	if s.sorted {
		return fmt.Errorf("extsort: AddSortedRun after Sort")
	}
	if len(recs) == 0 {
		return nil
	}
	if s.memLimit <= 0 {
		for _, r := range recs {
			s.buf = append(s.buf, seqRecord{Record: r, seq: s.seq})
			s.seq++
		}
		return nil
	}
	return s.writeRun(func(rw *RunWriter) error {
		for _, r := range recs {
			if err := rw.WriteRecord(s.seq, r.Key, r.Value); err != nil {
				return err
			}
			s.seq++
		}
		return nil
	})
}

// Len returns the number of records added so far.
func (s *Sorter) Len() int { return int(s.seq) }

// Runs returns the number of on-disk runs spilled so far.
func (s *Sorter) Runs() int { return len(s.runs) }

func sortBuf(buf []seqRecord) {
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].Key != buf[j].Key {
			return buf[i].Key < buf[j].Key
		}
		return buf[i].seq < buf[j].seq
	})
}

// writeRun opens a run file, streams records through emit, and
// registers the file. On any failure the partial run file is removed
// before returning, so errors never leak files.
func (s *Sorter) writeRun(emit func(*RunWriter) error) error {
	wc, name, err := s.newRunFile()
	if err != nil {
		return err
	}
	rw := NewRunWriter(wc)
	fail := func(err error) error {
		wc.Close()
		if name != "" {
			os.Remove(name)
		}
		return err
	}
	if err := emit(rw); err != nil {
		return fail(err)
	}
	if err := rw.Flush(); err != nil {
		return fail(fmt.Errorf("extsort: flushing run: %w", err))
	}
	if err := wc.Close(); err != nil {
		if name != "" {
			os.Remove(name)
		}
		return fmt.Errorf("extsort: closing run: %w", err)
	}
	s.runs = append(s.runs, name)
	return nil
}

func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sortBuf(s.buf)
	if err := s.writeRun(func(rw *RunWriter) error {
		for _, r := range s.buf {
			if err := rw.WriteRecord(r.seq, r.Key, r.Value); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	return nil
}

// Sort finalizes the sorter and returns an iterator over all records in
// (key, insertion) order. Call Close on the sorter afterwards to remove
// spill files.
func (s *Sorter) Sort() (*Iterator, error) {
	if s.sorted {
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.sorted = true
	sortBuf(s.buf)
	it := &Iterator{mem: s.buf}
	for _, run := range s.runs {
		f, err := os.Open(run)
		if err != nil {
			it.Close()
			return nil, fmt.Errorf("extsort: %w", err)
		}
		it.files = append(it.files, f)
		it.readers = append(it.readers, NewRunReader(f))
	}
	if err := it.init(); err != nil {
		it.Close()
		return nil, err
	}
	return it, nil
}

// Close removes all spill files and the per-Sorter temp dir.
func (s *Sorter) Close() error {
	var first error
	for _, run := range s.runs {
		if err := os.Remove(run); err != nil && first == nil && !os.IsNotExist(err) {
			first = err
		}
	}
	s.runs = nil
	if s.dir != "" {
		if err := os.RemoveAll(s.dir); err != nil && first == nil {
			first = err
		}
		s.dir = ""
	}
	return first
}

// writeRecord encodes seq, key length, key, value length, value.
func writeRecord(w *bufio.Writer, r seqRecord) error {
	var hdr [3 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], r.seq)
	n += binary.PutUvarint(hdr[n:], uint64(len(r.Key)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("extsort: writing record: %w", err)
	}
	if _, err := w.WriteString(r.Key); err != nil {
		return fmt.Errorf("extsort: writing key: %w", err)
	}
	n = binary.PutUvarint(hdr[:], uint64(len(r.Value)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("extsort: writing record: %w", err)
	}
	if _, err := w.Write(r.Value); err != nil {
		return fmt.Errorf("extsort: writing value: %w", err)
	}
	return nil
}

func readRecord(r *bufio.Reader) (seqRecord, error) {
	seq, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return seqRecord{}, io.EOF // clean end of run
		}
		return seqRecord{}, fmt.Errorf("extsort: truncated run (seq): %w", err)
	}
	kl, err := binary.ReadUvarint(r)
	if err != nil {
		return seqRecord{}, fmt.Errorf("extsort: truncated run (key len): %w", err)
	}
	key := make([]byte, kl)
	if _, err := io.ReadFull(r, key); err != nil {
		return seqRecord{}, fmt.Errorf("extsort: truncated run (key): %w", err)
	}
	vl, err := binary.ReadUvarint(r)
	if err != nil {
		return seqRecord{}, fmt.Errorf("extsort: truncated run (value len): %w", err)
	}
	value := make([]byte, vl)
	if _, err := io.ReadFull(r, value); err != nil {
		return seqRecord{}, fmt.Errorf("extsort: truncated run (value): %w", err)
	}
	return seqRecord{Record: Record{Key: string(key), Value: value}, seq: seq}, nil
}

// Iterator yields records in (key, insertion) order by merging the
// in-memory tail with all on-disk runs through a loser tree (the same
// Merger the MapReduce engine uses for its in-memory shuffle).
type Iterator struct {
	mem     []seqRecord
	memPos  int
	files   []*os.File
	readers []*RunReader
	merger  *Merger[seqRecord]
	err     error
	inited  bool
}

func (it *Iterator) init() error {
	if it.inited {
		return nil
	}
	it.inited = true
	pulls := make([]func() (seqRecord, bool), 0, len(it.readers)+1)
	pulls = append(pulls, func() (seqRecord, bool) {
		if it.memPos >= len(it.mem) {
			return seqRecord{}, false
		}
		rec := it.mem[it.memPos]
		it.memPos++
		return rec, true
	})
	for _, r := range it.readers {
		r := r
		pulls = append(pulls, func() (seqRecord, bool) {
			rec, err := r.read()
			if err == io.EOF {
				return seqRecord{}, false
			}
			if err != nil {
				if it.err == nil {
					it.err = err
				}
				return seqRecord{}, false
			}
			return rec, true
		})
	}
	it.merger = NewMerger(pulls, func(a, b seqRecord) int {
		if a.Key != b.Key {
			if a.Key < b.Key {
				return -1
			}
			return 1
		}
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
	return it.err
}

// Next returns the next record; ok is false at the end.
func (it *Iterator) Next() (rec Record, ok bool, err error) {
	if it.err != nil {
		return Record{}, false, it.err
	}
	sr, ok := it.merger.Next()
	if it.err != nil {
		return Record{}, false, it.err
	}
	if !ok {
		return Record{}, false, nil
	}
	return sr.Record, true, nil
}

// Drain reads all remaining records into a slice.
func (it *Iterator) Drain() ([]Record, error) {
	var out []Record
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// Close closes all run files (but does not remove them; Sorter.Close
// does).
func (it *Iterator) Close() error {
	var first error
	for _, f := range it.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	it.files = nil
	return first
}
