package extsort

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRecordRoundTrip drives arbitrary records through the full
// RunWriter→RunReader stack (record codec + LZ compression + CRC
// framing) and requires exact reconstruction.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(0), "", []byte(nil), "k", []byte("v"))
	f.Add(uint64(1<<63), "key with spaces", []byte{0, 255, 10}, "", bytes.Repeat([]byte("ab"), 5000))
	f.Add(uint64(42), "dup", []byte("dup"), "dup", []byte("dup"))
	f.Fuzz(func(t *testing.T, seq uint64, k1 string, v1 []byte, k2 string, v2 []byte) {
		var buf bytes.Buffer
		rw := NewRunWriter(&buf)
		if err := rw.WriteRecord(seq, k1, v1); err != nil {
			t.Fatal(err)
		}
		if err := rw.WriteRecord(seq+1, k2, v2); err != nil {
			t.Fatal(err)
		}
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		rr := NewRunReader(bytes.NewReader(buf.Bytes()))
		gs, gk, gv, err := rr.Next()
		if err != nil {
			t.Fatalf("first record: %v", err)
		}
		if gs != seq || gk != k1 || !bytes.Equal(gv, v1) {
			t.Fatalf("first record mismatch: (%d,%q,%q)", gs, gk, gv)
		}
		gs, gk, gv, err = rr.Next()
		if err != nil {
			t.Fatalf("second record: %v", err)
		}
		if gs != seq+1 || gk != k2 || !bytes.Equal(gv, v2) {
			t.Fatalf("second record mismatch: (%d,%q,%q)", gs, gk, gv)
		}
		if _, _, _, err := rr.Next(); err != io.EOF {
			t.Fatalf("want io.EOF, got %v", err)
		}
	})
}

// FuzzRunReaderArbitraryInput feeds arbitrary bytes to the reader: it
// must terminate with io.EOF or an error, never panic or loop.
func FuzzRunReaderArbitraryInput(f *testing.F) {
	// Seed with a valid stream and a few mutations of it.
	var buf bytes.Buffer
	rw := NewRunWriter(&buf)
	for i := 0; i < 50; i++ {
		rw.WriteRecord(uint64(i), "seed-key", []byte("seed value payload"))
	}
	rw.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[3] ^= 0xff
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRunReader(bytes.NewReader(data))
		for i := 0; i < 1<<20; i++ {
			_, _, _, err := rr.Next()
			if err != nil {
				return // EOF or corruption error — both acceptable
			}
		}
		t.Fatal("reader produced over a million records from fuzz input")
	})
}

// FuzzDecompress hammers the LZ decoder directly with arbitrary op
// streams and claimed lengths; it must error on garbage, never panic.
func FuzzDecompress(f *testing.F) {
	var c compressor
	comp := c.compress(nil, bytes.Repeat([]byte("roundtrip material "), 50))
	f.Add(comp, 19*50)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 'x', 4, 1}, 5)
	f.Fuzz(func(t *testing.T, data []byte, rawLen int) {
		if rawLen < 0 || rawLen > compressBlockSize {
			return
		}
		out, err := decompress(nil, data, rawLen)
		if err == nil && len(out) != rawLen {
			t.Fatalf("decompress returned %d bytes without error, want %d", len(out), rawLen)
		}
	})
}
