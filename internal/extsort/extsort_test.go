package extsort

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"
	"testing/quick"
)

func collect(t *testing.T, s *Sorter) []Record {
	t.Helper()
	it, err := s.Sort()
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	defer it.Close()
	out, err := it.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	return out
}

func TestInMemorySort(t *testing.T) {
	s := NewSorter(t.TempDir(), 0)
	for _, k := range []string{"b", "a", "c", "a"} {
		if err := s.Add(k, []byte(k+"-v")); err != nil {
			t.Fatal(err)
		}
	}
	out := collect(t, s)
	wantKeys := []string{"a", "a", "b", "c"}
	if len(out) != len(wantKeys) {
		t.Fatalf("got %d records", len(out))
	}
	for i, k := range wantKeys {
		if out[i].Key != k {
			t.Errorf("record %d key = %q, want %q", i, out[i].Key, k)
		}
	}
	if s.Runs() != 0 {
		t.Errorf("in-memory sort spilled %d runs", s.Runs())
	}
}

func TestSpillingSortMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", rng.Intn(200))
	}
	mem := NewSorter(t.TempDir(), 0)
	disk := NewSorter(t.TempDir(), 137) // force many spills
	for i, k := range keys {
		v := []byte(fmt.Sprintf("v%d", i))
		if err := mem.Add(k, v); err != nil {
			t.Fatal(err)
		}
		if err := disk.Add(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if disk.Runs() < 10 {
		t.Fatalf("expected many spill runs, got %d", disk.Runs())
	}
	a := collect(t, mem)
	b := collect(t, disk)
	if len(a) != n || len(b) != n {
		t.Fatalf("lengths: %d, %d, want %d", len(a), len(b), n)
	}
	for i := range a {
		if a[i].Key != b[i].Key || string(a[i].Value) != string(b[i].Value) {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if err := disk.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestStabilityAcrossSpills(t *testing.T) {
	// Equal keys must surface in insertion order even when they span
	// multiple runs.
	s := NewSorter(t.TempDir(), 3)
	for i := 0; i < 20; i++ {
		if err := s.Add("same", []byte(fmt.Sprintf("%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	out := collect(t, s)
	for i, r := range out {
		if want := fmt.Sprintf("%02d", i); string(r.Value) != want {
			t.Fatalf("position %d has %q, want %q — stability broken", i, r.Value, want)
		}
	}
}

func TestSortedOrderProperty(t *testing.T) {
	f := func(keys []string) bool {
		s := NewSorter(os.TempDir(), 7)
		defer s.Close()
		for _, k := range keys {
			if err := s.Add(k, nil); err != nil {
				return false
			}
		}
		it, err := s.Sort()
		if err != nil {
			return false
		}
		defer it.Close()
		out, err := it.Drain()
		if err != nil || len(out) != len(keys) {
			return false
		}
		got := make([]string, len(out))
		for i, r := range out {
			got[i] = r.Key
		}
		want := append([]string{}, keys...)
		sort.Strings(want)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAddAfterSortFails(t *testing.T) {
	s := NewSorter(t.TempDir(), 0)
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("k", nil); err == nil {
		t.Error("Add after Sort should fail")
	}
	if _, err := s.Sort(); err == nil {
		t.Error("second Sort should fail")
	}
}

func TestCloseRemovesSpillFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(dir, 2)
	for i := 0; i < 10; i++ {
		if err := s.Add(fmt.Sprint(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() == 0 {
		t.Fatal("no spills happened")
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Drain(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close must remove the per-Sorter temp dir too, leaving the parent
	// exactly as it found it.
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("spill artifacts left behind: %v", left)
	}
}

func TestEmptySorter(t *testing.T) {
	s := NewSorter(t.TempDir(), 4)
	out := collect(t, s)
	if len(out) != 0 {
		t.Errorf("empty sorter yielded %v", out)
	}
}

func TestBinaryValuesSurviveSpill(t *testing.T) {
	s := NewSorter(t.TempDir(), 1)
	payload := []byte{0, 1, 2, 255, 254, '\n', '\t'}
	if err := s.Add("bin", payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("aaa", nil); err != nil {
		t.Fatal(err)
	}
	out := collect(t, s)
	if len(out) != 2 || out[1].Key != "bin" {
		t.Fatalf("out = %v", out)
	}
	if string(out[1].Value) != string(payload) {
		t.Errorf("binary payload corrupted: %v", out[1].Value)
	}
	if len(out[0].Value) != 0 {
		t.Errorf("nil value corrupted: %v", out[0].Value)
	}
}

func TestLenCounts(t *testing.T) {
	s := NewSorter(t.TempDir(), 2)
	for i := 0; i < 7; i++ {
		if err := s.Add("k", nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 7 {
		t.Errorf("Len = %d, want 7", s.Len())
	}
}
