package extsort

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"testing"
)

func TestRunWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRunWriter(&buf)
	type rec struct {
		seq uint64
		key string
		val []byte
	}
	rng := rand.New(rand.NewSource(9))
	var want []rec
	for i := 0; i < 5000; i++ {
		r := rec{
			seq: uint64(rng.Int63()),
			key: fmt.Sprintf("key-%04d", rng.Intn(300)),
			val: []byte(strings.Repeat("payload", rng.Intn(10))),
		}
		want = append(want, r)
		if err := rw.WriteRecord(r.seq, r.key, r.val); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	rr := NewRunReader(bytes.NewReader(buf.Bytes()))
	for i, w := range want {
		seq, key, val, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != w.seq || key != w.key || !bytes.Equal(val, w.val) {
			t.Fatalf("record %d: got (%d,%q,%q), want (%d,%q,%q)",
				i, seq, key, val, w.seq, w.key, w.val)
		}
	}
	if _, _, _, err := rr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestRunCompressionShrinksRepetitiveData(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRunWriter(&buf)
	raw := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("block-%03d", i%7)
		val := []byte(strings.Repeat("duplicate entity encoding ", 4))
		raw += len(key) + len(val)
		if err := rw.WriteRecord(uint64(i), key, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= raw/2 {
		t.Errorf("compressed run %d bytes for %d raw bytes — expected ≥ 2× shrink on repetitive data", buf.Len(), raw)
	}
}

func TestRunReaderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRunWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := rw.WriteRecord(uint64(i), fmt.Sprintf("k%d", i), []byte("some value bytes")); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte; the CRC must catch it.
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x40
	rr := NewRunReader(bytes.NewReader(mut))
	for {
		_, _, _, err := rr.Next()
		if err == io.EOF {
			t.Fatal("corrupted run read to clean EOF — CRC did not catch the flip")
		}
		if err != nil {
			break // corruption surfaced as an error, as it must
		}
	}
	// Truncation mid-stream must error, not silently end.
	rr = NewRunReader(bytes.NewReader(data[:len(data)-3]))
	for {
		_, _, _, err := rr.Next()
		if err == io.EOF {
			t.Fatal("truncated run read to clean EOF")
		}
		if err != nil {
			break
		}
	}
}

func TestCompressRoundTripBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var c compressor
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abcd"),
		bytes.Repeat([]byte("x"), compressBlockSize),                       // max RLE
		bytes.Repeat([]byte("abcdefgh"), 1000),                             // periodic
		[]byte(strings.Repeat("the quick brown fox ", 200)),                // text
		func() []byte { b := make([]byte, 4096); rng.Read(b); return b }(), // incompressible
	}
	for i, raw := range cases {
		comp := c.compress(nil, raw)
		got, err := decompress(nil, comp, len(raw))
		if err != nil {
			t.Fatalf("case %d: decompress: %v", i, err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("case %d: round trip mismatch (%d bytes in, %d out)", i, len(raw), len(got))
		}
	}
}

// TestSorterUniqueTempDirs verifies two sorters given the same parent
// never share spill paths (the old fixed SortDir collided across
// concurrent runs).
func TestSorterUniqueTempDirs(t *testing.T) {
	parent := t.TempDir()
	a := NewSorter(parent, 1)
	b := NewSorter(parent, 1)
	for i := 0; i < 4; i++ {
		if err := a.Add(fmt.Sprint(i), []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(fmt.Sprint(i), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	if a.dir == "" || b.dir == "" || a.dir == b.dir {
		t.Fatalf("sorter temp dirs not unique: %q vs %q", a.dir, b.dir)
	}
	// Closing one sorter must not disturb the other's runs.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	out := collect(t, b)
	if len(out) != 4 {
		t.Fatalf("sorter b lost records after a.Close: %d", len(out))
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("artifacts left in parent: %v", left)
	}
}

// failingWriteCloser wraps a real file but fails after limit bytes, so
// a leaked partial file would be observable on disk.
type failingWriteCloser struct {
	f       *os.File
	written int
	limit   int
}

func (fw *failingWriteCloser) Write(p []byte) (int, error) {
	if fw.written+len(p) > fw.limit {
		return 0, errors.New("injected write failure")
	}
	fw.written += len(p)
	return fw.f.Write(p)
}

func (fw *failingWriteCloser) Close() error { return fw.f.Close() }

// TestSpillErrorRemovesPartialRun injects a write failure mid-spill and
// asserts the partial run file is removed immediately (not just at
// Close — an errored spill never registers its file, so Close alone
// would leak it).
func TestSpillErrorRemovesPartialRun(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(dir, 2)
	s.createRun = func() (io.WriteCloser, string, error) {
		f, err := os.CreateTemp(dir, "run-*.spill")
		if err != nil {
			return nil, "", err
		}
		return &failingWriteCloser{f: f, limit: 8}, f.Name(), nil
	}
	var spillErr error
	for i := 0; i < 10 && spillErr == nil; i++ {
		spillErr = s.Add(fmt.Sprintf("key-%d", i), []byte("a value long enough to trip the limit"))
	}
	if spillErr == nil {
		t.Fatal("injected write failure never surfaced")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("partial run files leaked after failed spill: %v", left)
	}
}

// TestAddSortedRunErrorRemovesPartialRun covers the same leak on the
// pre-sorted ingest path.
func TestAddSortedRunErrorRemovesPartialRun(t *testing.T) {
	dir := t.TempDir()
	s := NewSorter(dir, 1)
	s.createRun = func() (io.WriteCloser, string, error) {
		f, err := os.CreateTemp(dir, "run-*.spill")
		if err != nil {
			return nil, "", err
		}
		return &failingWriteCloser{f: f, limit: 4}, f.Name(), nil
	}
	recs := []Record{{Key: "a", Value: []byte("0123456789")}, {Key: "b", Value: []byte("0123456789")}}
	if err := s.AddSortedRun(recs); err == nil {
		t.Fatal("injected write failure never surfaced")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("partial run files leaked after failed AddSortedRun: %v", left)
	}
}
