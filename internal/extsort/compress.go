package extsort

// Block compression + integrity framing for run files. Run files used
// to be raw length-prefixed records; they are now a sequence of framed
// blocks, each holding up to compressBlockSize bytes of record stream:
//
//	frame := uvarint(rawLen) uvarint(compLen) crc32c(raw, 4B LE) payload
//
// compLen == 0 marks a stored (incompressible) block whose payload is
// the raw bytes themselves; otherwise the payload is compLen bytes of
// LZ-compressed data. The CRC is always over the *raw* bytes, so a
// mismatch catches both media corruption and decoder bugs.
//
// The codec is a from-scratch snappy-style byte-oriented LZ77: greedy
// matching through a 4-byte hash table, emitted as alternating
// (literal-run, match) ops. Shuffle payloads are highly repetitive
// (shared key prefixes, entity encodings duplicated across blocks), so
// even this simple scheme routinely shrinks spill I/O by 2-4×.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// compressBlockSize is the raw bytes per frame. 64 KiB keeps the
	// match offsets short (≤ 2-byte varints) and the decode buffers
	// cache-friendly.
	compressBlockSize = 64 << 10
	// compressMinMatch is the shortest back-reference worth emitting;
	// below it the varint op overhead eats the savings.
	compressMinMatch = 4
	// compressHashBits sizes the match table (positions of recent
	// 4-byte sequences).
	compressHashBits = 14
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hash4 hashes the 4 bytes at b[0:4] into compressHashBits bits.
func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - compressHashBits)
}

// compressor holds the reusable match table so per-block compression
// does not allocate.
type compressor struct {
	table [1 << compressHashBits]int32
}

// compress appends the LZ encoding of src to dst. The output is a
// sequence of ops, each a literal run followed (except possibly at the
// very end) by a match:
//
//	op := uvarint(litLen) litLen bytes [ uvarint(matchLen) uvarint(offset) ]
//
// The decoder knows the raw length from the frame header, so a final
// op may stop after its literals.
func (c *compressor) compress(dst, src []byte) []byte {
	for i := range c.table {
		c.table[i] = -1
	}
	n := len(src)
	lit := 0 // start of the pending literal run
	i := 0
	for i+compressMinMatch <= n {
		h := hash4(src[i:])
		cand := c.table[h]
		c.table[h] = int32(i)
		if cand < 0 || binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[i:]) {
			i++
			continue
		}
		// Extend the match as far as it goes.
		m := i + compressMinMatch
		p := int(cand) + compressMinMatch
		for m < n && src[m] == src[p] {
			m++
			p++
		}
		dst = binary.AppendUvarint(dst, uint64(i-lit))
		dst = append(dst, src[lit:i]...)
		dst = binary.AppendUvarint(dst, uint64(m-i))
		dst = binary.AppendUvarint(dst, uint64(i-int(cand)))
		i = m
		lit = i
	}
	if lit < n {
		dst = binary.AppendUvarint(dst, uint64(n-lit))
		dst = append(dst, src[lit:]...)
	}
	return dst
}

// decompress appends the decoding of src (produced by compress) to
// dst, which the caller sizes for rawLen more bytes. It validates every
// op against rawLen and the produced prefix, so corrupt or adversarial
// input yields an error, never a panic or out-of-bounds copy.
func decompress(dst, src []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	pos := 0
	for len(dst)-base < rawLen {
		litLen, k := binary.Uvarint(src[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("extsort: corrupt block (literal length)")
		}
		pos += k
		produced := len(dst) - base
		if litLen > uint64(rawLen-produced) || litLen > uint64(len(src)-pos) {
			return nil, fmt.Errorf("extsort: corrupt block (literal run overflows)")
		}
		dst = append(dst, src[pos:pos+int(litLen)]...)
		pos += int(litLen)
		if len(dst)-base == rawLen {
			break
		}
		matchLen, k := binary.Uvarint(src[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("extsort: corrupt block (match length)")
		}
		pos += k
		offset, k := binary.Uvarint(src[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("extsort: corrupt block (match offset)")
		}
		pos += k
		produced = len(dst) - base
		if matchLen == 0 || offset == 0 || offset > uint64(produced) ||
			matchLen > uint64(rawLen-produced) {
			return nil, fmt.Errorf("extsort: corrupt block (match %d@-%d at %d/%d)",
				matchLen, offset, produced, rawLen)
		}
		// Byte-by-byte: matches may overlap their own output (RLE-style).
		from := len(dst) - int(offset)
		for j := 0; j < int(matchLen); j++ {
			dst = append(dst, dst[from+j])
		}
	}
	return dst, nil
}

// blockWriter frames and compresses a byte stream into blocks. Close
// flushes the final partial block; it does not close the underlying
// writer.
type blockWriter struct {
	w    io.Writer
	buf  []byte
	comp compressor
	// scratch holds the compressed candidate between blocks.
	scratch []byte
	hdr     [2*binary.MaxVarintLen64 + 4]byte
}

func newBlockWriter(w io.Writer) *blockWriter {
	return &blockWriter{w: w, buf: make([]byte, 0, compressBlockSize)}
}

// Write implements io.Writer, cutting a frame whenever a full block of
// raw bytes has accumulated.
func (bw *blockWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		room := compressBlockSize - len(bw.buf)
		if room == 0 {
			if err := bw.emit(); err != nil {
				return total - len(p), err
			}
			room = compressBlockSize
		}
		if room > len(p) {
			room = len(p)
		}
		bw.buf = append(bw.buf, p[:room]...)
		p = p[room:]
	}
	return total, nil
}

// emit writes the buffered raw bytes as one frame.
func (bw *blockWriter) emit() error {
	raw := bw.buf
	if len(raw) == 0 {
		return nil
	}
	bw.scratch = bw.comp.compress(bw.scratch[:0], raw)
	comp := bw.scratch
	stored := len(comp) >= len(raw) // incompressible: store raw
	n := binary.PutUvarint(bw.hdr[:], uint64(len(raw)))
	if stored {
		n += binary.PutUvarint(bw.hdr[n:], 0)
	} else {
		n += binary.PutUvarint(bw.hdr[n:], uint64(len(comp)))
	}
	binary.LittleEndian.PutUint32(bw.hdr[n:], crc32.Checksum(raw, crcTable))
	n += 4
	if _, err := bw.w.Write(bw.hdr[:n]); err != nil {
		return fmt.Errorf("extsort: writing block header: %w", err)
	}
	payload := comp
	if stored {
		payload = raw
	}
	if _, err := bw.w.Write(payload); err != nil {
		return fmt.Errorf("extsort: writing block payload: %w", err)
	}
	bw.buf = bw.buf[:0]
	return nil
}

// Close flushes the final partial frame.
func (bw *blockWriter) Close() error { return bw.emit() }

// blockReader is the inverse of blockWriter: an io.Reader yielding the
// original raw byte stream, verifying each frame's CRC.
type blockReader struct {
	r   *bufio.Reader
	buf []byte
	pos int
	err error
}

func newBlockReader(r io.Reader) *blockReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &blockReader{r: br}
}

// fill decodes the next frame into buf.
func (br *blockReader) fill() error {
	rawLen, err := binary.ReadUvarint(br.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF // clean end at a frame boundary
		}
		return fmt.Errorf("extsort: reading block header: %w", err)
	}
	compLen, err := binary.ReadUvarint(br.r)
	if err != nil {
		return fmt.Errorf("extsort: truncated block header: %w", err)
	}
	if rawLen == 0 || rawLen > compressBlockSize || compLen > uint64(2*compressBlockSize) {
		return fmt.Errorf("extsort: corrupt block header (raw %d, comp %d)", rawLen, compLen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br.r, crcBuf[:]); err != nil {
		return fmt.Errorf("extsort: truncated block CRC: %w", err)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	br.buf = br.buf[:0]
	br.pos = 0
	if compLen == 0 {
		// Stored block.
		if cap(br.buf) < int(rawLen) {
			br.buf = make([]byte, 0, compressBlockSize)
		}
		br.buf = br.buf[:rawLen]
		if _, err := io.ReadFull(br.r, br.buf); err != nil {
			return fmt.Errorf("extsort: truncated stored block: %w", err)
		}
	} else {
		comp := make([]byte, compLen)
		if _, err := io.ReadFull(br.r, comp); err != nil {
			return fmt.Errorf("extsort: truncated compressed block: %w", err)
		}
		if cap(br.buf) < int(rawLen) {
			br.buf = make([]byte, 0, compressBlockSize)
		}
		br.buf, err = decompress(br.buf, comp, int(rawLen))
		if err != nil {
			return err
		}
	}
	if got := crc32.Checksum(br.buf, crcTable); got != want {
		return fmt.Errorf("extsort: block CRC mismatch (got %08x, want %08x)", got, want)
	}
	return nil
}

// Read implements io.Reader.
func (br *blockReader) Read(p []byte) (int, error) {
	if br.err != nil {
		return 0, br.err
	}
	for br.pos >= len(br.buf) {
		if err := br.fill(); err != nil {
			br.err = err
			return 0, err
		}
	}
	n := copy(p, br.buf[br.pos:])
	br.pos += n
	return n, nil
}
