package extsort

// RunWriter/RunReader are the run-file record codec: length-prefixed
// (seq, key, value) records layered over the compressed block framing
// in compress.go. They are exported so the MapReduce shuffle can write
// its own pre-sorted spill runs (tagging records with a merge priority
// in the seq field) without going through a Sorter.

import (
	"bufio"
	"io"
)

// RunWriter encodes records into a compressed, CRC-framed run stream.
// Flush must be called before the underlying writer is closed; records
// written after Flush are lost.
type RunWriter struct {
	fw *blockWriter
	w  *bufio.Writer
}

// NewRunWriter wraps w. The caller retains ownership of w and must
// close it (after Flush) itself.
func NewRunWriter(w io.Writer) *RunWriter {
	fw := newBlockWriter(w)
	return &RunWriter{fw: fw, w: bufio.NewWriterSize(fw, 1<<15)}
}

// WriteRecord appends one record. seq is the stable-merge tiebreaker
// surfaced again by RunReader.Next.
func (rw *RunWriter) WriteRecord(seq uint64, key string, value []byte) error {
	return writeRecord(rw.w, seqRecord{Record: Record{Key: key, Value: value}, seq: seq})
}

// Flush drains buffered records and emits the final partial block.
func (rw *RunWriter) Flush() error {
	if err := rw.w.Flush(); err != nil {
		return err
	}
	return rw.fw.Close()
}

// RunReader decodes a stream produced by RunWriter.
type RunReader struct {
	r *bufio.Reader
}

// NewRunReader wraps r; the caller retains ownership of r.
func NewRunReader(r io.Reader) *RunReader {
	return &RunReader{r: bufio.NewReaderSize(newBlockReader(r), 1<<15)}
}

// Next returns the next record, or io.EOF at the clean end of the
// stream. Any other error means a truncated or corrupt run.
func (rr *RunReader) Next() (seq uint64, key string, value []byte, err error) {
	rec, err := rr.read()
	if err != nil {
		return 0, "", nil, err
	}
	return rec.seq, rec.Key, rec.Value, nil
}

func (rr *RunReader) read() (seqRecord, error) { return readRecord(rr.r) }
