package extsort

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sliceSource(xs []int) func() (int, bool) {
	i := 0
	return func() (int, bool) {
		if i >= len(xs) {
			return 0, false
		}
		v := xs[i]
		i++
		return v, true
	}
}

func intCmp(a, b int) int { return a - b }

func TestMergerEmptyAndSingle(t *testing.T) {
	m := NewMerger(nil, intCmp)
	if _, ok := m.Next(); ok {
		t.Error("empty merger yielded a value")
	}
	m = NewMerger([]func() (int, bool){sliceSource([]int{1, 2, 3})}, intCmp)
	for want := 1; want <= 3; want++ {
		v, ok := m.Next()
		if !ok || v != want {
			t.Fatalf("got (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := m.Next(); ok {
		t.Error("exhausted merger yielded a value")
	}
}

func TestMergerMergesSortedSourcesProperty(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(k%7) + 1
		var all []int
		pulls := make([]func() (int, bool), n)
		for s := 0; s < n; s++ {
			m := rng.Intn(20)
			xs := make([]int, m)
			for i := range xs {
				xs[i] = rng.Intn(10) // duplicates across and within sources
			}
			sort.Ints(xs)
			all = append(all, xs...)
			pulls[s] = sliceSource(xs)
		}
		sort.Ints(all)
		m := NewMerger(pulls, intCmp)
		for i, want := range all {
			v, ok := m.Next()
			if !ok || v != want {
				t.Logf("position %d: got (%d,%v), want %d", i, v, ok, want)
				return false
			}
		}
		_, ok := m.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

type tagged struct {
	key string
	src int
}

func TestMergerStableAcrossSources(t *testing.T) {
	// Every source holds the same keys; ties must surface in source
	// order, which is what the engine's map-task ordering relies on.
	const k = 5
	pulls := make([]func() (tagged, bool), k)
	for s := 0; s < k; s++ {
		xs := []tagged{{"a", s}, {"a", s}, {"b", s}}
		i := 0
		pulls[s] = func() (tagged, bool) {
			if i >= len(xs) {
				return tagged{}, false
			}
			v := xs[i]
			i++
			return v, true
		}
	}
	m := NewMerger(pulls, func(a, b tagged) int {
		if a.key < b.key {
			return -1
		}
		if a.key > b.key {
			return 1
		}
		return 0
	})
	var got []tagged
	for {
		v, ok := m.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3*k {
		t.Fatalf("merged %d records, want %d", len(got), 3*k)
	}
	// Within each key, source indices must be non-decreasing.
	for i := 1; i < len(got); i++ {
		if got[i].key == got[i-1].key && got[i].src < got[i-1].src {
			t.Fatalf("tie broken out of source order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

func TestAddSortedRunMatchesAdd(t *testing.T) {
	// Feeding pre-sorted runs must produce the identical stream the
	// record-at-a-time path produces for the same insertion order.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	var runs [][]Record
	for r := 0; r < 6; r++ {
		n := rng.Intn(40)
		run := make([]Record, n)
		for i := range run {
			run[i] = Record{
				Key:   fmt.Sprintf("k%02d", rng.Intn(15)),
				Value: []byte(fmt.Sprintf("r%d-i%d", r, i)),
			}
		}
		sort.SliceStable(run, func(a, b int) bool { return run[a].Key < run[b].Key })
		runs = append(runs, run)
	}

	drain := func(s *Sorter) []Record {
		it, err := s.Sort()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		out, err := it.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	ref := NewSorter(dir, 16)
	for _, run := range runs {
		for _, rec := range run {
			if err := ref.Add(rec.Key, rec.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer ref.Close()
	want := drain(ref)

	fast := NewSorter(dir, 16)
	for _, run := range runs {
		if err := fast.AddSortedRun(run); err != nil {
			t.Fatal(err)
		}
	}
	defer fast.Close()
	got := drain(fast)

	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("record %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if fast.Runs() != 6 {
		t.Errorf("AddSortedRun spilled %d runs, want 6 (one per run)", fast.Runs())
	}
}

func TestAddSortedRunInMemory(t *testing.T) {
	s := NewSorter(t.TempDir(), 0) // no spill budget: buffered
	if err := s.AddSortedRun([]Record{{Key: "b"}, {Key: "c"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSortedRun([]Record{{Key: "a"}, {Key: "b", Value: []byte("2")}}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	out, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"a", "b", "b", "c"}
	if len(out) != len(wantKeys) {
		t.Fatalf("got %d records", len(out))
	}
	for i, k := range wantKeys {
		if out[i].Key != k {
			t.Fatalf("key %d = %q, want %q", i, out[i].Key, k)
		}
	}
	// Stability: the run-1 "b" (inserted first) precedes run-2's.
	if string(out[1].Value) != "" || string(out[2].Value) != "2" {
		t.Error("equal keys surfaced out of insertion order")
	}
	if s.Runs() != 0 {
		t.Errorf("in-memory path spilled %d runs", s.Runs())
	}
}

func TestAddSortedRunAfterSortFails(t *testing.T) {
	s := NewSorter(t.TempDir(), 0)
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSortedRun([]Record{{Key: "x"}}); err == nil {
		t.Error("AddSortedRun after Sort should fail")
	}
}
