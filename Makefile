# Standard gate for every change: `make check` must pass before a PR.
# Individual targets are available for quicker iteration.

GO ?= go

.PHONY: check vet build test race fmt bench bench-compare trace-demo chaos

check: fmt vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench regenerates the numbers recorded in BENCH_*.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkShuffle|BenchmarkLevenshtein$$|BenchmarkJaccardQ2|BenchmarkTokenCosine|BenchmarkJob2Map$$|BenchmarkJob2Reduce|BenchmarkEnginePipeline' -benchmem ./...

# bench-compare diffs the barriered reference engine against the
# pipelined engine on the skewed BenchmarkEnginePipeline workload,
# worker count by worker count. Host-parallelism caveat: on a
# single-CPU machine the engines do identical work and should tie;
# the pipelined overlap win needs real cores.
bench-compare:
	@tmp="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmp"' EXIT; \
	echo "== barrier engine =="; \
	$(GO) test -run '^$$' -bench 'BenchmarkEnginePipeline/barrier' -benchmem ./internal/mapreduce \
		| grep '^Benchmark' | sed 's|/barrier/|/|' | tee "$$tmp/barrier.txt"; \
	echo "== pipelined engine =="; \
	$(GO) test -run '^$$' -bench 'BenchmarkEnginePipeline/pipelined' -benchmem ./internal/mapreduce \
		| grep '^Benchmark' | sed 's|/pipelined/|/|' | tee "$$tmp/pipelined.txt"; \
	echo "== barrier -> pipelined =="; \
	./scripts/benchdiff.sh "$$tmp/barrier.txt" "$$tmp/pipelined.txt"

# chaos runs the pipeline under deterministic fault injection and
# asserts the output is byte-identical to the fault-free baseline.
chaos:
	./scripts/chaos.sh

# trace-demo runs the quickstart example with tracing + metrics +
# quality telemetry enabled and sanity-checks the exported Chrome trace
# JSON and quality JSON with tracecheck.
trace-demo:
	@tmp="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./examples/quickstart -trace "$$tmp/trace.json" -metrics-out "$$tmp/metrics.prom" -quality-out "$$tmp/quality.json" >/dev/null && \
	$(GO) run ./scripts/tracecheck -quality "$$tmp/quality.json" "$$tmp/trace.json" && \
	head -n 4 "$$tmp/metrics.prom"
