# Standard gate for every change: `make check` must pass before a PR.
# Individual targets are available for quicker iteration.

GO ?= go

.PHONY: check vet build test race fmt bench trace-demo chaos

check: fmt vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench regenerates the numbers recorded in BENCH_*.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkShuffle|BenchmarkLevenshtein$$|BenchmarkJaccardQ2|BenchmarkTokenCosine|BenchmarkJob2Map' -benchmem ./...

# chaos runs the pipeline under deterministic fault injection and
# asserts the output is byte-identical to the fault-free baseline.
chaos:
	./scripts/chaos.sh

# trace-demo runs the quickstart example with tracing + metrics +
# quality telemetry enabled and sanity-checks the exported Chrome trace
# JSON and quality JSON with tracecheck.
trace-demo:
	@tmp="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./examples/quickstart -trace "$$tmp/trace.json" -metrics-out "$$tmp/metrics.prom" -quality-out "$$tmp/quality.json" >/dev/null && \
	$(GO) run ./scripts/tracecheck -quality "$$tmp/quality.json" "$$tmp/trace.json" && \
	head -n 4 "$$tmp/metrics.prom"
