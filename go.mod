module proger

go 1.22
