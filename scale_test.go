package proger_test

import (
	"testing"

	"proger"
)

// TestScalePipeline runs the full pipeline at a scale an order of
// magnitude beyond the unit tests (skipped with -short). It guards
// against quadratic blowups in the schedule generator, degenerate
// splitting loops, and memory growth in the shuffle, and asserts the
// quality invariants still hold.
func TestScalePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const n = 20000
	ds, gt := proger.GeneratePublications(n, 77)
	fams := proger.CiteSeerXFamilies(ds.Schema)
	trainDS, trainGT := proger.GeneratePublications(n/8, 770077)
	model := proger.TrainDupModel(trainDS, trainGT, proger.CiteSeerXFamilies(trainDS.Schema))
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: 1, Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: 2, Weight: 0.2, Kind: proger.EditDistance},
	)
	res, err := proger.Resolve(ds, proger.Options{
		Families:        fams,
		Matcher:         matcher,
		Mechanism:       proger.SN,
		Policy:          proger.CiteSeerXPolicy(),
		DupModel:        model,
		Machines:        25, // the paper's full cluster
		SlotsPerMachine: 2,
	})
	if err != nil {
		t.Fatalf("Resolve at scale: %v", err)
	}
	curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
	if fr := curve.FinalRecall(); fr < 0.6 {
		t.Errorf("final recall %.3f at scale", fr)
	}
	// Redundancy-free resolution must hold at scale.
	seen := proger.PairSet{}
	for _, ev := range res.Events {
		if !seen.Add(ev.Pair) {
			t.Fatalf("pair %v emitted twice at scale", ev.Pair)
		}
	}
	// The recall curve must rise well before the end (progressiveness).
	half := curve.RecallAt(res.TotalTime / 2)
	if half < curve.FinalRecall()*0.6 {
		t.Errorf("only %.3f of %.3f recall by half time — not progressive", half, curve.FinalRecall())
	}
	t.Logf("scale run: %d entities, %d true pairs, final recall %.3f, total %.0f units",
		ds.Len(), gt.NumDupPairs(), curve.FinalRecall(), res.TotalTime)
}

// TestScaleOutOfCore runs the pipeline at scale under a memory budget
// a small fraction of the raw shuffle volume (skipped with -short).
// It guards the out-of-core contract: the workload completes with the
// tracked peak held under the budget while total charged bytes exceed
// it several times over, and the result — every duplicate event and
// timestamp, hence the progressive-recall curve — is identical to the
// unconstrained in-memory run.
func TestScaleOutOfCore(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const n = 12000
	const budget = 1 << 20 // 1 MiB, far below the shuffle volume
	ds, gt := proger.GeneratePublications(n, 77)
	run := func(budgetBytes int64, spillDir string) (*proger.Result, *proger.MetricsRegistry) {
		metrics := proger.NewMetricsRegistry()
		res, err := proger.Resolve(ds, proger.Options{
			Families: proger.CiteSeerXFamilies(ds.Schema),
			Matcher: proger.MustMatcher(0.75,
				proger.Rule{Attr: 0, Weight: 0.5, Kind: proger.EditDistance},
				proger.Rule{Attr: 1, Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
				proger.Rule{Attr: 2, Weight: 0.2, Kind: proger.EditDistance},
			),
			Mechanism:       proger.SN,
			Policy:          proger.CiteSeerXPolicy(),
			Machines:        10,
			SlotsPerMachine: 2,
			Metrics:         metrics,
			MemBudget:       budgetBytes,
			SpillDir:        spillDir,
		})
		if err != nil {
			t.Fatalf("Resolve (budget %d): %v", budgetBytes, err)
		}
		return res, metrics
	}
	ref, _ := run(0, "")
	res, metrics := run(budget, t.TempDir())

	if len(res.Events) != len(ref.Events) {
		t.Fatalf("budget run found %d events, in-memory %d", len(res.Events), len(ref.Events))
	}
	for i := range res.Events {
		if res.Events[i] != ref.Events[i] {
			t.Fatalf("event %d diverged under budget: %+v vs %+v", i, res.Events[i], ref.Events[i])
		}
	}
	if res.TotalTime != ref.TotalTime {
		t.Errorf("total time %v under budget, want %v", res.TotalTime, ref.TotalTime)
	}
	peak := int64(metrics.Gauge(proger.GaugeMemBudgetPeakBytes).Value())
	charged := int64(metrics.Gauge(proger.GaugeMemBudgetChargedBytes).Value())
	if peak > budget {
		t.Errorf("tracked peak %d B exceeded the %d B budget", peak, budget)
	}
	if charged < 4*budget {
		t.Errorf("charged total %d B < 4× budget %d B — workload too small to prove out-of-core operation", charged, budget)
	}
	spills := metrics.Counter(proger.CounterBudgetForcedSpills).Value()
	if spills == 0 {
		t.Error("no forced spills at scale under a 1 MiB budget")
	}
	curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
	t.Logf("out-of-core scale run: %d entities, budget %d B, peak %d B, charged %d B (%.1f× budget), %d forced spills, %d B spilled, final recall %.3f",
		ds.Len(), int64(budget), peak, charged, float64(charged)/float64(budget),
		spills, metrics.Counter(proger.CounterBudgetSpilledBytes).Value(), curve.FinalRecall())
}
