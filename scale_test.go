package proger_test

import (
	"testing"

	"proger"
)

// TestScalePipeline runs the full pipeline at a scale an order of
// magnitude beyond the unit tests (skipped with -short). It guards
// against quadratic blowups in the schedule generator, degenerate
// splitting loops, and memory growth in the shuffle, and asserts the
// quality invariants still hold.
func TestScalePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const n = 20000
	ds, gt := proger.GeneratePublications(n, 77)
	fams := proger.CiteSeerXFamilies(ds.Schema)
	trainDS, trainGT := proger.GeneratePublications(n/8, 770077)
	model := proger.TrainDupModel(trainDS, trainGT, proger.CiteSeerXFamilies(trainDS.Schema))
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: 1, Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: 2, Weight: 0.2, Kind: proger.EditDistance},
	)
	res, err := proger.Resolve(ds, proger.Options{
		Families:        fams,
		Matcher:         matcher,
		Mechanism:       proger.SN,
		Policy:          proger.CiteSeerXPolicy(),
		DupModel:        model,
		Machines:        25, // the paper's full cluster
		SlotsPerMachine: 2,
	})
	if err != nil {
		t.Fatalf("Resolve at scale: %v", err)
	}
	curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
	if fr := curve.FinalRecall(); fr < 0.6 {
		t.Errorf("final recall %.3f at scale", fr)
	}
	// Redundancy-free resolution must hold at scale.
	seen := proger.PairSet{}
	for _, ev := range res.Events {
		if !seen.Add(ev.Pair) {
			t.Fatalf("pair %v emitted twice at scale", ev.Pair)
		}
	}
	// The recall curve must rise well before the end (progressiveness).
	half := curve.RecallAt(res.TotalTime / 2)
	if half < curve.FinalRecall()*0.6 {
		t.Errorf("only %.3f of %.3f recall by half time — not progressive", half, curve.FinalRecall())
	}
	t.Logf("scale run: %d entities, %d true pairs, final recall %.3f, total %.0f units",
		ds.Len(), gt.NumDupPairs(), curve.FinalRecall(), res.TotalTime)
}
