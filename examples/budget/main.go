// Command budget demonstrates the motivating use case of the paper's
// introduction: an enterprise with a limited (or costly) compute budget
// terminates the ER process early, keeping whatever quality the budget
// bought. The progressive pipeline makes early termination cheap: at
// any cutoff, all duplicates discovered before it are already written
// out, so the run prints the recall each fraction of the full budget
// would have achieved.
//
// Usage:
//
//	go run ./examples/budget [-n 6000] [-machines 8] [-budget 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"proger"
)

func main() {
	n := flag.Int("n", 6000, "number of entities")
	machines := flag.Int("machines", 8, "simulated machines")
	budget := flag.Float64("budget", 0.25, "fraction of the full-resolution cost to spend")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	ds, gt := proger.GeneratePublications(*n, *seed)
	families := proger.CiteSeerXFamilies(ds.Schema)
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: ds.Schema.Index("title"), Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: ds.Schema.Index("abstract"), Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: ds.Schema.Index("venue"), Weight: 0.2, Kind: proger.EditDistance},
	)
	trainDS, trainGT := proger.GeneratePublications(*n/4, *seed+100000)
	model := proger.TrainDupModel(trainDS, trainGT, proger.CiteSeerXFamilies(trainDS.Schema))

	res, err := proger.Resolve(ds, proger.Options{
		Families:        families,
		Matcher:         matcher,
		Mechanism:       proger.SN,
		Policy:          proger.CiteSeerXPolicy(),
		DupModel:        model,
		Machines:        *machines,
		SlotsPerMachine: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)

	fmt.Printf("Full resolution: %.0f cost units for recall %.3f\n\n", res.TotalTime, curve.FinalRecall())
	fmt.Printf("%10s  %12s  %10s\n", "budget", "cost units", "recall")
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75, 1.0} {
		cutoff := res.TotalTime * frac
		fmt.Printf("%9.0f%%  %12.0f  %10.3f\n", frac*100, cutoff, curve.RecallAt(cutoff))
	}

	cutoff := res.TotalTime * *budget
	got := curve.RecallAt(cutoff)
	fmt.Printf("\nWith a %.0f%% budget you would stop at %.0f units having found %.1f%%\n",
		*budget*100, cutoff, got*100)
	fmt.Printf("of all duplicates — %.1f%% of what the full run finds, for %.0f%% of its cost.\n",
		100*got/curve.FinalRecall(), *budget*100)

	// Count the duplicates that would have been delivered by the cutoff.
	delivered := 0
	for _, ev := range res.Events {
		if ev.Time <= cutoff {
			delivered++
		}
	}
	fmt.Printf("Pairs already delivered at the cutoff: %d of %d.\n", delivered, len(res.Events))
}
