// Command quickstart resolves the paper's Table-I toy people dataset
// end-to-end with the full parallel progressive pipeline and prints
// every duplicate discovery with its simulated timestamp — the smallest
// possible demonstration of the public API.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"proger"
)

func main() {
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this path")
	metricsPath := flag.String("metrics-out", "", "write run metrics in Prometheus text format to this path")
	qualityPath := flag.String("quality-out", "", "write quality telemetry (progressive-recall curve + calibration report) as JSON to this path")
	sampleEvery := flag.Float64("sample-every", 0, "progressive-recall sampling interval in cost units (0 = total time / 64)")
	faultRate := flag.Float64("fault-rate", 0, "inject simulated task faults at this per-attempt probability (0 disables; results are unaffected)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for deterministic fault injection")
	maxRetries := flag.Int("max-retries", 3, "per-task retry budget when -fault-rate > 0")
	barrier := flag.Bool("barrier", false, "use the barriered reference engine instead of the pipelined default (results are identical)")
	memBudget := flag.Int64("mem-budget", 0, "cap tracked shuffle/statistics memory at this many bytes, spilling compressed runs to disk (0 = all in memory; results are identical)")
	spillDir := flag.String("spill-dir", "", "directory for spill files (default system temp; only used with -mem-budget)")
	statusAddr := flag.String("status", "", "serve the live status server (/healthz, /progress, /tasks, /membudget, /metrics, /debug/pprof) on this address while the run executes")
	flag.Parse()

	var (
		tracer  *proger.Tracer
		metrics *proger.MetricsRegistry
		quality *proger.QualityRecorder
	)
	if *tracePath != "" {
		tracer = proger.NewTracer()
	}
	if *metricsPath != "" {
		metrics = proger.NewMetricsRegistry()
	}
	if *qualityPath != "" {
		quality = proger.NewQualityRecorder()
	}
	var lvRun *proger.LiveRun
	if *statusAddr != "" {
		if metrics == nil {
			metrics = proger.NewMetricsRegistry()
		}
		lvRun = proger.NewLiveRun(nil)
		srv, err := proger.ServeStatus(*statusAddr, lvRun, metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "status listening on http://%s/\n", srv.Addr())
	}

	// The Table-I dataset: nine people records, six real-world people.
	ds, gt := proger.GeneratePeople()
	fmt.Println("Input entities:")
	for _, e := range ds.Entities {
		fmt.Printf("  e%d: %-18s %s\n", e.ID, e.Attr(0), e.Attr(1))
	}

	// Blocking as in the paper's running example: X keys on name
	// prefixes (2, then 3, then 5 chars); Y keys on the state.
	// X dominates Y (§IV-A discusses why: state blocks are few and
	// large, so their duplicate density is low).
	families := proger.Families{
		{Name: "X", Attr: 0, PrefixLens: []int{2, 3, 5}, Index: 1},
		{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 2},
	}

	// The resolve function: weighted edit similarity on name and state.
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.8, Kind: proger.EditDistance},
		proger.Rule{Attr: 1, Weight: 0.2, Kind: proger.EditDistance},
	)

	opts := proger.Options{
		Families:        families,
		Matcher:         matcher,
		Mechanism:       proger.SN, // Sorted Neighbor with the [5] hint
		Policy:          proger.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       proger.SchedulerOurs,
		Trace:           tracer,
		Metrics:         metrics,
		Quality:         quality,
		Live:            lvRun,
	}
	// Chaos knob: deterministic fault injection. The attempt runtime
	// retries, times out, and speculates around injected faults — the
	// output below is identical with or without it.
	if *faultRate > 0 {
		opts.Faults = proger.NewSeededFaults(*faultSeed, *faultRate)
		opts.Retry = proger.RetryPolicy{MaxRetries: *maxRetries, Speculation: true}
	}
	if *barrier {
		opts.Execution = proger.ExecBarrier
	}
	// Out-of-core knob: a memory budget forces shuffle buffers and the
	// Job-1 statistics through compressed disk runs. Like -barrier and
	// -fault-rate, the output below is identical with or without it.
	opts.MemBudget = *memBudget
	opts.SpillDir = *spillDir
	res, err := proger.Resolve(ds, opts)
	lvRun.Finish(err)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nDuplicates, in discovery order (time = simulated cost units):")
	for _, ev := range res.EventsAgainst(gt.IsDup) {
		verdict := "correct"
		if !ev.TrueDup {
			verdict = "FALSE POSITIVE"
		}
		fmt.Printf("  t=%7.1f  %v  (%s)\n", ev.Time, ev.Pair, verdict)
	}

	curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
	fmt.Printf("\nFinal recall: %.2f  (found %d of %d true pairs)\n",
		curve.FinalRecall(), len(res.Duplicates), gt.NumDupPairs())
	fmt.Printf("Total simulated time: %.0f cost units (job 1: %.0f, job 2: %.0f)\n",
		res.TotalTime, res.Job1.End, res.TotalTime-res.Job1.End)

	if *tracePath != "" {
		writeExport(*tracePath, tracer.WriteChromeTrace)
		fmt.Printf("Wrote %d trace spans to %s\n", tracer.Len(), *tracePath)
	}
	if *metricsPath != "" {
		writeExport(*metricsPath, metrics.WritePrometheus)
		fmt.Printf("Wrote metrics to %s\n", *metricsPath)
	}
	if *qualityPath != "" {
		exp := quality.Export(proger.CostUnits(*sampleEvery))
		writeExport(*qualityPath, exp.WriteJSON)
		fmt.Printf("Wrote quality telemetry to %s (AUC %.3f)\n", *qualityPath, exp.Curve.AUC)
	}
}

func writeExport(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
