// Command books runs the paper's OL-Books-style workload: a synthetic
// book dataset resolved with the PSNM mechanism across a sweep of
// cluster sizes, printing the recall speedup each extra machine buys —
// a miniature of Figs. 10 and 11.
//
// Usage:
//
//	go run ./examples/books [-n 8000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"proger"
)

func main() {
	n := flag.Int("n", 8000, "number of entities")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	ds, gt := proger.GenerateBooks(*n, *seed)
	fmt.Printf("Dataset: %d book entities (8 attributes), %d true duplicate pairs\n",
		ds.Len(), gt.NumDupPairs())

	families := proger.OLBooksFamilies(ds.Schema)
	idx := ds.Schema.Index
	matcher := proger.MustMatcher(0.62,
		proger.Rule{Attr: idx("title"), Weight: 0.35, Kind: proger.EditDistance},
		proger.Rule{Attr: idx("authors"), Weight: 0.25, Kind: proger.EditDistance},
		proger.Rule{Attr: idx("publisher"), Weight: 0.10, Kind: proger.EditDistance},
		proger.Rule{Attr: idx("year"), Weight: 0.08, Kind: proger.ExactMatch},
		proger.Rule{Attr: idx("language"), Weight: 0.06, Kind: proger.ExactMatch},
		proger.Rule{Attr: idx("format"), Weight: 0.05, Kind: proger.ExactMatch},
		proger.Rule{Attr: idx("pages"), Weight: 0.05, Kind: proger.ExactMatch},
		proger.Rule{Attr: idx("edition"), Weight: 0.06, Kind: proger.ExactMatch},
	)
	trainDS, trainGT := proger.GenerateBooks(*n/4, *seed+100000)
	model := proger.TrainDupModel(trainDS, trainGT, proger.OLBooksFamilies(trainDS.Schema))

	machineCounts := []int{5, 10, 20}
	curves := make([]*proger.Curve, len(machineCounts))
	for i, mu := range machineCounts {
		res, err := proger.Resolve(ds, proger.Options{
			Families:        families,
			Matcher:         matcher,
			Mechanism:       proger.PSNM,
			Policy:          proger.OLBooksPolicy(),
			DupModel:        model,
			Machines:        mu,
			SlotsPerMachine: 2,
			Scheduler:       proger.SchedulerOurs,
		})
		if err != nil {
			log.Fatal(err)
		}
		curves[i] = proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
		theta := ds.Len() / mu
		fmt.Printf("μ=%2d machines (θ=%5d entities/machine): final recall %.3f in %.0f cost units\n",
			mu, theta, curves[i].FinalRecall(), res.TotalTime)
	}

	fmt.Printf("\nRecall speedup relative to %d machines:\n", machineCounts[0])
	fmt.Printf("%8s", "recall")
	for _, mu := range machineCounts {
		fmt.Printf("  %8s", fmt.Sprintf("μ=%d", mu))
	}
	fmt.Println()
	for _, rho := range []float64{0.2, 0.4, 0.6, 0.8} {
		fmt.Printf("%8.1f", rho)
		for i := range machineCounts {
			if s, ok := proger.Speedup(curves[0], curves[i], rho); ok {
				fmt.Printf("  %8.2f", s)
			} else {
				fmt.Printf("  %8s", "—")
			}
		}
		fmt.Println()
	}
}
