// Command people resolves a people dataset (names, cities, states,
// phones) with *phonetic* blocking: the dominating family keys on the
// Soundex code of the name — robust to the spelling variation that
// plagues person records — with prefix blocking on city and state as
// safety nets, exactly the multi-blocking-function setup §II-A argues
// for. It then compares phonetic against plain prefix blocking.
//
// Usage:
//
//	go run ./examples/people [-n 6000] [-machines 6] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"proger"
	"proger/internal/datagen"
)

func main() {
	n := flag.Int("n", 6000, "number of entities")
	machines := flag.Int("machines", 6, "simulated machines")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	ds, gt := datagen.PersonRecords(datagen.DefaultPeople(*n, *seed))
	fmt.Printf("Dataset: %d person records, %d true duplicate pairs\n", ds.Len(), gt.NumDupPairs())

	idx := ds.Schema.Index
	matcher := proger.MustMatcher(0.78,
		proger.Rule{Attr: idx("name"), Weight: 0.55, Kind: proger.EditDistance},
		proger.Rule{Attr: idx("city"), Weight: 0.20, Kind: proger.EditDistance},
		proger.Rule{Attr: idx("state"), Weight: 0.10, Kind: proger.ExactMatch},
		proger.Rule{Attr: idx("phone"), Weight: 0.15, Kind: proger.ExactMatch},
	)

	run := func(label string, fams proger.Families) *proger.Curve {
		res, err := proger.Resolve(ds, proger.Options{
			Families:        fams,
			Matcher:         matcher,
			Mechanism:       proger.SN,
			Policy:          proger.CiteSeerXPolicy(),
			Machines:        *machines,
			SlotsPerMachine: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
		m := proger.EvaluatePairs(res.Duplicates, gt.IsDup, gt.NumDupPairs())
		fmt.Printf("%-18s recall %.3f  precision %.3f  F1 %.3f  in %8.0f cost units\n",
			label, m.Recall, m.Precision, m.F1, res.TotalTime)
		return curve
	}

	phonetic := run("soundex blocking", proger.Families{
		{Name: "S", Attr: idx("name"), PrefixLens: []int{1, 2, 4}, Index: 1, Kind: proger.KeySoundex},
		{Name: "C", Attr: idx("city"), PrefixLens: []int{3, 5}, Index: 2},
		{Name: "T", Attr: idx("state"), PrefixLens: []int{2}, Index: 3},
	})
	prefix := run("prefix blocking", proger.Families{
		{Name: "N", Attr: idx("name"), PrefixLens: []int{2, 3, 5}, Index: 1},
		{Name: "C", Attr: idx("city"), PrefixLens: []int{3, 5}, Index: 2},
		{Name: "T", Attr: idx("state"), PrefixLens: []int{2}, Index: 3},
	})

	fmt.Println("\nRecall curves (shared grid):")
	end := phonetic.End
	if prefix.End > end {
		end = prefix.End
	}
	fmt.Printf("%14s  %10s  %10s\n", "cost units", "soundex", "prefix")
	for i := 1; i <= 12; i++ {
		at := end * proger.CostUnits(i) / 12
		fmt.Printf("%14.0f  %10.3f  %10.3f\n", at, phonetic.RecallAt(at), prefix.RecallAt(at))
	}
}
