// Command publications runs the paper's CiteSeerX-style workload: a
// synthetic publication dataset resolved by the parallel progressive
// pipeline (SN mechanism) versus the Basic baseline, printing both
// recall-versus-cost curves side by side — a miniature of Fig. 8.
//
// Usage:
//
//	go run ./examples/publications [-n 8000] [-machines 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"proger"
)

func main() {
	n := flag.Int("n", 8000, "number of entities")
	machines := flag.Int("machines", 10, "simulated machines (2 slots each)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	ds, gt := proger.GeneratePublications(*n, *seed)
	fmt.Printf("Dataset: %d publication entities, %d true duplicate pairs\n",
		ds.Len(), gt.NumDupPairs())

	families := proger.CiteSeerXFamilies(ds.Schema)
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: ds.Schema.Index("title"), Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: ds.Schema.Index("abstract"), Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: ds.Schema.Index("venue"), Weight: 0.2, Kind: proger.EditDistance},
	)

	// Train the duplicate model on a disjoint sample, as in §VI-A4.
	trainDS, trainGT := proger.GeneratePublications(*n/4, *seed+100000)
	model := proger.TrainDupModel(trainDS, trainGT, proger.CiteSeerXFamilies(trainDS.Schema))

	ours, err := proger.Resolve(ds, proger.Options{
		Families:        families,
		Matcher:         matcher,
		Mechanism:       proger.SN,
		Policy:          proger.CiteSeerXPolicy(),
		DupModel:        model,
		Machines:        *machines,
		SlotsPerMachine: 2,
		Scheduler:       proger.SchedulerOurs,
	})
	if err != nil {
		log.Fatal(err)
	}

	basic, err := proger.ResolveBasic(ds, proger.BasicOptions{
		Families:         families,
		Matcher:          matcher,
		Mechanism:        proger.SN,
		Window:           15,
		PopcornThreshold: -1, // Basic F: resolve every block fully
		Machines:         *machines,
		SlotsPerMachine:  2,
	})
	if err != nil {
		log.Fatal(err)
	}

	total := gt.NumDupPairs()
	ourCurve := proger.BuildCurve(ours.EventsAgainst(gt.IsDup), total, ours.TotalTime)
	basicCurve := proger.BuildCurve(basic.EventsAgainst(gt.IsDup), total, basic.TotalTime)

	end := ours.TotalTime
	if basic.TotalTime > end {
		end = basic.TotalTime
	}
	fmt.Printf("\n%14s  %12s  %12s\n", "cost units", "ours", "Basic F")
	for i := 1; i <= 20; i++ {
		at := end * proger.CostUnits(i) / 20
		fmt.Printf("%14.0f  %12.3f  %12.3f\n", at, ourCurve.RecallAt(at), basicCurve.RecallAt(at))
	}
	fmt.Printf("\nFinal recall: ours %.3f in %.0f units; Basic F %.3f in %.0f units\n",
		ourCurve.FinalRecall(), ours.TotalTime, basicCurve.FinalRecall(), basic.TotalTime)

	// The quality function of Eq. 1 on a shared grid.
	k := 10
	costs := make([]proger.CostUnits, k)
	weights := make([]float64, k)
	for i := range costs {
		costs[i] = end * proger.CostUnits(i+1) / proger.CostUnits(k)
		weights[i] = float64(k-i) / float64(k)
	}
	qOurs, _ := proger.Qty(ourCurve, costs, weights)
	qBasic, _ := proger.Qty(basicCurve, costs, weights)
	fmt.Printf("Quality Qty (Eq. 1): ours %.4f vs Basic %.4f\n", qOurs, qBasic)
}
